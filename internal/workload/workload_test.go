package workload

import (
	"testing"

	"fastmatch/internal/exec"
	"fastmatch/internal/gdb"
	"fastmatch/internal/xmark"
)

func TestShapes(t *testing.T) {
	for _, w := range Paths() {
		if !w.Pattern.IsPath() {
			t.Errorf("%s is not a path: %s", w.Name, w.Pattern)
		}
	}
	for _, w := range Trees() {
		if !w.Pattern.IsTree() {
			t.Errorf("%s is not a tree: %s", w.Name, w.Pattern)
		}
	}
	for _, battery := range []struct {
		name  string
		ws    []Workload
		nodes int
		edges int
	}{
		{"Graphs4A", Graphs4A(), 4, 3},
		{"Graphs4B", Graphs4B(), 4, 4},
		{"Graphs5A", Graphs5A(), 5, 4},
		{"Graphs5B", Graphs5B(), 5, 5},
	} {
		if len(battery.ws) != 5 {
			t.Errorf("%s has %d patterns, want 5", battery.name, len(battery.ws))
		}
		for _, w := range battery.ws {
			if w.Pattern.NumNodes() != battery.nodes {
				t.Errorf("%s %s has %d nodes, want %d", battery.name, w.Name, w.Pattern.NumNodes(), battery.nodes)
			}
			if w.Pattern.NumEdges() != battery.edges {
				t.Errorf("%s %s has %d edges, want %d", battery.name, w.Name, w.Pattern.NumEdges(), battery.edges)
			}
		}
	}
	for _, w := range Cyclic() {
		if w.Pattern.NumEdges() < w.Pattern.NumNodes() {
			t.Errorf("%s is acyclic (%d nodes, %d edges): %s — the WCOJ battery needs a cycle",
				w.Name, w.Pattern.NumNodes(), w.Pattern.NumEdges(), w.Pattern)
		}
	}
	if len(Paths()) != 9 || len(Trees()) != 9 {
		t.Fatal("workload counts off (want 9 paths, 9 trees)")
	}
	// Path node counts: three each of 3, 4, 5 nodes.
	counts := map[int]int{}
	for _, w := range Paths() {
		counts[w.Pattern.NumNodes()]++
	}
	if counts[3] != 3 || counts[4] != 3 || counts[5] != 3 {
		t.Fatalf("path sizes = %v, want 3 each of 3/4/5", counts)
	}
}

// TestAllNonEmptyOnXMark: every workload must produce at least one match on
// a generated dataset — otherwise the benchmarks would measure nothing.
func TestAllNonEmptyOnXMark(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	d := xmark.Generate(xmark.Config{Nodes: 20000, Seed: 1})
	db, err := gdb.Build(d.Graph, gdb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for _, w := range All() {
		res, err := exec.Query(db, w.Pattern, exec.DPS)
		if err != nil {
			t.Errorf("%s: %v", w.Name, err)
			continue
		}
		if res.Len() == 0 {
			t.Errorf("%s: empty result on XMark data (%s)", w.Name, w.Pattern)
		}
	}
}

// TestPathsTreesNonEmptyOnDAG: the Figure 5 workloads must be non-empty on
// the DAG datasets TSD runs on.
func TestPathsTreesNonEmptyOnDAG(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	d := xmark.Generate(xmark.Config{Nodes: 16000, Seed: 2, DAG: true})
	db, err := gdb.Build(d.Graph, gdb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for _, set := range [][]Workload{Paths(), Trees()} {
		for _, w := range set {
			res, err := exec.Query(db, w.Pattern, exec.DPS)
			if err != nil {
				t.Errorf("%s: %v", w.Name, err)
				continue
			}
			if res.Len() == 0 {
				t.Errorf("%s: empty result on DAG data (%s)", w.Name, w.Pattern)
			}
		}
	}
}
