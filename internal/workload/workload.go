// Package workload defines the query workloads of the paper's Section 6
// (Figure 4), instantiated with XMark schema labels: nine path patterns
// P1–P9 (3/4/5 nodes), nine tree patterns T1–T9, and two batteries of five
// graph patterns Q1–Q5 with |V_q| = 4 and |V_q| = 5 used in Figure 6.
// Every pattern is non-empty by construction on graphs from
// internal/xmark.
package workload

import "fastmatch/internal/pattern"

// Workload names one benchmark pattern.
type Workload struct {
	Name    string
	Pattern *pattern.Pattern
}

func mk(name, spec string) Workload {
	return Workload{Name: name, Pattern: pattern.MustParse(spec)}
}

// Paths returns P1–P9: three 3-node, three 4-node, and three 5-node path
// patterns (Figure 4(a)/(c)/(h); Figure 5(a)).
func Paths() []Workload {
	return []Workload{
		mk("P1", "site->regions; regions->item"),
		mk("P2", "person->profile; profile->interest"),
		mk("P3", "open_auction->bidder; bidder->personref"),
		mk("P4", "site->regions; regions->item; item->incategory"),
		mk("P5", "site->people; people->person; person->address"),
		mk("P6", "open_auction->annotation; annotation->author; author->person"),
		mk("P7", "site->regions; regions->item; item->incategory; incategory->category"),
		mk("P8", "site->people; people->person; person->profile; profile->interest"),
		mk("P9", "open_auction->bidder; bidder->personref; personref->person; person->address"),
	}
}

// Trees returns T1–T9: tree (twig) patterns of the Figure 4(d)/(j)/(k)/(l)
// shapes (Figure 5(b)).
func Trees() []Workload {
	return []Workload{
		mk("T1", "item->name; item->incategory; incategory->category"),
		mk("T2", "person->address; person->profile; profile->interest"),
		mk("T3", "open_auction->bidder; open_auction->itemref; bidder->personref"),
		mk("T4", "site->regions; site->people; regions->item; people->person"),
		mk("T5", "item->mailbox; mailbox->mail; mail->from; mail->to"),
		mk("T6", "person->name; person->address; address->city; address->country"),
		mk("T7", "closed_auction->seller; closed_auction->itemref; itemref->item; item->incategory"),
		mk("T8", "site->open_auctions; open_auctions->open_auction; open_auction->annotation; open_auction->bidder"),
		mk("T9", "person->watches; person->profile; profile->interest; interest->category"),
	}
}

// Graphs4A returns Q1–Q5 with |V_q| = 4, multi-source confluence shapes
// (Figure 4(e); used for Figure 6(a)).
func Graphs4A() []Workload {
	return []Workload{
		mk("Q1", "open_auction->person; closed_auction->person; open_auction->item"),
		mk("Q2", "item->category; person->category; person->open_auction"),
		mk("Q3", "closed_auction->person; open_auction->person; person->category"),
		mk("Q4", "open_auction->item; closed_auction->item; item->category"),
		mk("Q5", "open_auction->item; open_auction->person; person->category"),
	}
}

// Graphs4B returns Q1–Q5 with |V_q| = 4 and four edges each — diamonds and
// triangles with reconvergent conditions (Figure 4(d) family; Figure 6(b)).
func Graphs4B() []Workload {
	return []Workload{
		mk("Q1", "site->item; site->person; item->category; person->category"),
		mk("Q2", "closed_auction->item; closed_auction->person; item->category; person->category"),
		mk("Q3", "open_auction->item; open_auction->person; item->category; person->category"),
		mk("Q4", "person->item; person->interest; item->category; interest->category"),
		mk("Q5", "person->open_auction; person->category; open_auction->item; item->category"),
	}
}

// Graphs5A returns Q1–Q5 with |V_q| = 5 and four edges (Figure 4(h)
// family; Figure 6(c)).
func Graphs5A() []Workload {
	return []Workload{
		mk("Q1", "site->open_auction; open_auction->item; open_auction->person; item->category"),
		mk("Q2", "open_auction->item; closed_auction->item; item->incategory; incategory->category"),
		mk("Q3", "site->person; person->open_auction; open_auction->item; item->category"),
		mk("Q4", "site->regions; regions->item; item->category; site->person"),
		mk("Q5", "closed_auction->person; open_auction->person; person->profile; profile->interest"),
	}
}

// Graphs5B returns Q1–Q5 with |V_q| = 5 and five edges (Figure 4(i)
// family; Figure 6(d)).
func Graphs5B() []Workload {
	return []Workload{
		mk("Q1", "item->category; person->category; closed_auction->item; closed_auction->person; person->open_auction"),
		mk("Q2", "site->item; site->person; item->category; person->category; person->open_auction"),
		mk("Q3", "open_auction->item; closed_auction->item; item->incategory; incategory->category; open_auction->category"),
		mk("Q4", "site->person; person->open_auction; open_auction->item; item->category; person->item"),
		mk("Q5", "site->regions; regions->item; item->category; site->person; person->category"),
	}
}

// Cyclic returns CY1–CY5: patterns whose condition graphs contain
// undirected cycles — triangles, a diamond, and a 4-clique. These are the
// shapes where the hybrid optimizer can open with a worst-case-optimal
// multiway R-join over the cyclic core instead of a binary join pipeline;
// the acyclic batteries above never trigger it. Every pattern is
// non-empty on xmark graphs: site reaches every element of its document,
// person reaches categories via profile/interest and open auctions/items
// via watches, and open_auction reaches persons (bidder/seller/author)
// and items (itemref).
func Cyclic() []Workload {
	return []Workload{
		// Triangles.
		mk("CY1", "site->regions; regions->item; site->item"),
		mk("CY2", "open_auction->person; person->category; open_auction->category"),
		mk("CY3", "person->open_auction; open_auction->item; person->item"),
		// Diamond (4-cycle).
		mk("CY4", "closed_auction->item; closed_auction->person; item->category; person->category"),
		// 4-clique: all six conditions among four labels.
		mk("CY5", "site->person; site->item; site->category; person->item; person->category; item->category"),
	}
}

// ScalabilityPath is the Figure 7(a) pattern (a path, Figure 4(a) shape).
func ScalabilityPath() Workload {
	return mk("F7a-path", "site->regions; regions->item; item->incategory")
}

// ScalabilityTree is the Figure 7(b) pattern (a tree, Figure 4(d) shape).
func ScalabilityTree() Workload {
	return mk("F7b-tree", "person->address; person->profile; profile->interest")
}

// ScalabilityGraph is the Figure 7(c) pattern (a graph, Figure 4(i) shape).
func ScalabilityGraph() Workload {
	return mk("F7c-graph", "site->item; site->person; item->category; person->category")
}

// All returns every named workload, for exhaustive tests.
func All() []Workload {
	var out []Workload
	out = append(out, Paths()...)
	out = append(out, Trees()...)
	batteries := []struct {
		suffix string
		ws     []Workload
	}{
		{"x4a", Graphs4A()}, {"x4b", Graphs4B()}, {"x5a", Graphs5A()}, {"x5b", Graphs5B()},
	}
	for _, b := range batteries {
		for _, w := range b.ws {
			out = append(out, Workload{Name: w.Name + b.suffix, Pattern: w.Pattern})
		}
	}
	out = append(out, Cyclic()...)
	out = append(out, ScalabilityPath(), ScalabilityTree(), ScalabilityGraph())
	return out
}
