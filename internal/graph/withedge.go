package graph

import "slices"

// WithEdge returns a new Graph equal to g plus the edge u→v. The receiver
// is never mutated: label table, node labels, and extents are shared
// (they are unaffected by an edge insert), while both CSR adjacency
// arrays are copied with the new endpoint spliced in at its sorted
// position. Readers holding the old Graph keep a consistent snapshot,
// which is what the database's copy-on-write insert path relies on.
//
// Inserting an edge that already exists returns a copy with a duplicate
// entry; callers that need set semantics must check beforehand.
func (g *Graph) WithEdge(u, v NodeID) *Graph {
	n := g.NumNodes()
	if int(u) >= n || int(v) >= n || u < 0 || v < 0 {
		panic("graph: WithEdge endpoint out of range")
	}
	ng := &Graph{
		labels:    g.labels,
		nodeLabel: g.nodeLabel,
		extent:    g.extent,
	}
	ng.fwdHead, ng.fwdAdj = insertAdj(g.fwdHead, g.fwdAdj, u, v)
	ng.revHead, ng.revAdj = insertAdj(g.revHead, g.revAdj, v, u)
	return ng
}

// insertAdj copies a CSR (head, adj) pair with dst inserted into src's
// segment at its sorted position.
func insertAdj(head []int32, adj []NodeID, src, dst NodeID) ([]int32, []NodeID) {
	nh := make([]int32, len(head))
	for i := range head {
		nh[i] = head[i]
		if i > int(src) {
			nh[i]++
		}
	}
	seg := adj[head[src]:head[src+1]]
	pos := int(head[src])
	at, _ := slices.BinarySearch(seg, dst)
	pos += at
	na := make([]NodeID, len(adj)+1)
	copy(na, adj[:pos])
	na[pos] = dst
	copy(na[pos+1:], adj[pos:])
	return nh, na
}
