package graph

// Reaches reports whether v ⇝ w in g, i.e. w is reachable from v along zero
// or more edges (reachability is reflexive, matching the 2-hop convention of
// Example 3.1). It runs a fresh BFS and is intended for tests, small graphs,
// and as a ground-truth oracle — not for query processing.
func Reaches(g *Graph, v, w NodeID) bool {
	if v == w {
		return true
	}
	visited := make([]bool, g.NumNodes())
	queue := []NodeID{v}
	visited[v] = true
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, x := range g.Successors(u) {
			if x == w {
				return true
			}
			if !visited[x] {
				visited[x] = true
				queue = append(queue, x)
			}
		}
	}
	return false
}

// ReachableFrom returns the set of nodes reachable from v (including v) as a
// boolean slice indexed by NodeID.
func ReachableFrom(g *Graph, v NodeID) []bool {
	visited := make([]bool, g.NumNodes())
	queue := []NodeID{v}
	visited[v] = true
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, x := range g.Successors(u) {
			if !visited[x] {
				visited[x] = true
				queue = append(queue, x)
			}
		}
	}
	return visited
}

// ReachingTo returns the set of nodes that reach v (including v) as a
// boolean slice indexed by NodeID.
func ReachingTo(g *Graph, v NodeID) []bool {
	visited := make([]bool, g.NumNodes())
	queue := []NodeID{v}
	visited[v] = true
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, x := range g.Predecessors(u) {
			if !visited[x] {
				visited[x] = true
				queue = append(queue, x)
			}
		}
	}
	return visited
}

// TransitiveClosure computes the full reachability matrix of g as a slice of
// bitsets: bit w of row v is set iff v ⇝ w. Memory is O(|V|²/8); use only on
// small graphs (tests and the TSD comparison dataset).
type TransitiveClosure struct {
	n    int
	rows [][]uint64
}

// NewTransitiveClosure computes the closure of g by processing the SCC
// condensation in reverse topological order and OR-ing successor rows.
func NewTransitiveClosure(g *Graph) *TransitiveClosure {
	n := g.NumNodes()
	words := (n + 63) / 64
	tc := &TransitiveClosure{n: n, rows: make([][]uint64, n)}

	scc := NewSCC(g)
	nc := scc.NumComponents()
	compRows := make([][]uint64, nc)

	// Component IDs are in reverse topological order: component 0 has no
	// successors outside itself, so process IDs ascending.
	for c := int32(0); c < int32(nc); c++ {
		row := make([]uint64, words)
		for _, v := range scc.Members(c) {
			row[int(v)/64] |= 1 << (uint(v) % 64)
		}
		for _, sc := range scc.CondSuccessors(c) {
			srow := compRows[sc]
			for i, w := range srow {
				row[i] |= w
			}
		}
		compRows[c] = row
	}
	for v := 0; v < n; v++ {
		tc.rows[v] = compRows[scc.Comp[v]]
	}
	return tc
}

// Reaches reports v ⇝ w.
func (tc *TransitiveClosure) Reaches(v, w NodeID) bool {
	return tc.rows[v][int(w)/64]&(1<<(uint(w)%64)) != 0
}

// CountFrom returns |{w : v ⇝ w}|.
func (tc *TransitiveClosure) CountFrom(v NodeID) int {
	total := 0
	for _, word := range tc.rows[v] {
		total += popcount(word)
	}
	return total
}

func popcount(x uint64) int {
	count := 0
	for x != 0 {
		x &= x - 1
		count++
	}
	return count
}

// IsDAG reports whether g is acyclic (every SCC is a singleton with no
// self-loop).
func IsDAG(g *Graph) bool {
	scc := NewSCC(g)
	if scc.NumComponents() != g.NumNodes() {
		return false
	}
	for v := NodeID(0); int(v) < g.NumNodes(); v++ {
		for _, w := range g.Successors(v) {
			if w == v {
				return false
			}
		}
	}
	return true
}
