package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestTextRoundTrip(t *testing.T) {
	g, _ := paperGraph(t)
	var buf bytes.Buffer
	if err := WriteText(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip changed sizes: %v vs %v", g2, g)
	}
	for v := NodeID(0); int(v) < g.NumNodes(); v++ {
		if g2.LabelNameOf(v) != g.LabelNameOf(v) {
			t.Fatalf("label of %d changed", v)
		}
		a, b := g.Successors(v), g2.Successors(v)
		if len(a) != len(b) {
			t.Fatalf("successors of %d changed", v)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("successors of %d changed", v)
			}
		}
	}
}

func TestReadTextComments(t *testing.T) {
	in := "fgm 1\n# a comment\nn X\nn Y\n\ne 0 1\n"
	g, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 2 || g.NumEdges() != 1 {
		t.Fatalf("got %v", g)
	}
}

func TestReadTextErrors(t *testing.T) {
	cases := []struct {
		in   string
		frag string
	}{
		{"", "empty input"},
		{"nope\n", "bad header"},
		{"fgm 1\nx 1\n", "unknown record"},
		{"fgm 1\nn \n", "unknown record"}, // "n " trims to "n" → unknown
		{"fgm 1\ne 0 1\n", "out of range"},
		{"fgm 1\nn X\ne 0\n", "want \"e <from> <to>\""},
		{"fgm 1\nn X\ne a b\n", "invalid syntax"},
		{"fgm 1\nn X\ne 0 7\n", "out of range"},
	}
	for _, c := range cases {
		if _, err := ReadText(strings.NewReader(c.in)); err == nil || !strings.Contains(err.Error(), c.frag) {
			t.Errorf("ReadText(%q) err = %v, want containing %q", c.in, err, c.frag)
		}
	}
}

func TestWriteDOT(t *testing.T) {
	g, _ := paperGraph(t)
	var buf bytes.Buffer
	if err := WriteDOT(&buf, g, 0); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "digraph G") || !strings.Contains(out, "->") {
		t.Fatalf("unhelpful DOT output: %q", out[:80])
	}
	if strings.Count(out, "[label=") != g.NumNodes() {
		t.Fatalf("DOT node count mismatch")
	}
	// Capped output mentions omissions and stays well-formed.
	buf.Reset()
	if err := WriteDOT(&buf, g, 5); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "omitted") {
		t.Fatal("capped DOT should note omissions")
	}
}
