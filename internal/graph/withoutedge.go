package graph

import "slices"

// WithoutEdge returns a new Graph equal to g minus one occurrence of the
// edge u→v. Like WithEdge it never mutates the receiver: label table, node
// labels, and extents are shared, while both CSR adjacency arrays are
// copied with the endpoint spliced out, so readers holding the old Graph
// keep a consistent snapshot. When parallel u→v edges exist exactly one is
// removed.
//
// The edge must exist; callers check presence first (the database's delete
// path treats an absent edge as a no-op before ever getting here).
func (g *Graph) WithoutEdge(u, v NodeID) *Graph {
	n := g.NumNodes()
	if int(u) >= n || int(v) >= n || u < 0 || v < 0 {
		panic("graph: WithoutEdge endpoint out of range")
	}
	if !slices.Contains(g.Successors(u), v) {
		panic("graph: WithoutEdge on absent edge")
	}
	ng := &Graph{
		labels:    g.labels,
		nodeLabel: g.nodeLabel,
		extent:    g.extent,
	}
	ng.fwdHead, ng.fwdAdj = removeAdj(g.fwdHead, g.fwdAdj, u, v)
	ng.revHead, ng.revAdj = removeAdj(g.revHead, g.revAdj, v, u)
	return ng
}

// removeAdj copies a CSR (head, adj) pair with one occurrence of dst
// spliced out of src's segment.
func removeAdj(head []int32, adj []NodeID, src, dst NodeID) ([]int32, []NodeID) {
	nh := make([]int32, len(head))
	for i := range head {
		nh[i] = head[i]
		if i > int(src) {
			nh[i]--
		}
	}
	seg := adj[head[src]:head[src+1]]
	at, found := slices.BinarySearch(seg, dst)
	if !found {
		panic("graph: removeAdj on absent edge")
	}
	pos := int(head[src]) + at
	na := make([]NodeID, len(adj)-1)
	copy(na, adj[:pos])
	copy(na[pos:], adj[pos+1:])
	return nh, na
}
