package graph

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// WriteDOT renders g in Graphviz DOT format, one node per data node with
// its label and ID, for visualising small graphs and debugging examples.
// maxNodes caps the output (0 = no cap); when the cap truncates, a comment
// notes how many nodes were omitted.
func WriteDOT(w io.Writer, g *Graph, maxNodes int) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "digraph G {")
	fmt.Fprintln(bw, "  rankdir=LR;")
	fmt.Fprintln(bw, "  node [shape=ellipse, fontsize=10];")
	n := g.NumNodes()
	shown := n
	if maxNodes > 0 && maxNodes < n {
		shown = maxNodes
	}
	for v := 0; v < shown; v++ {
		fmt.Fprintf(bw, "  n%d [label=%q];\n", v, fmt.Sprintf("%s/%d", escapeDOT(g.LabelNameOf(NodeID(v))), v))
	}
	for v := 0; v < shown; v++ {
		for _, u := range g.Successors(NodeID(v)) {
			if int(u) < shown {
				fmt.Fprintf(bw, "  n%d -> n%d;\n", v, u)
			}
		}
	}
	if shown < n {
		fmt.Fprintf(bw, "  // %d of %d nodes omitted\n", n-shown, n)
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}

func escapeDOT(s string) string {
	return strings.NewReplacer(`"`, `\"`, "\n", " ").Replace(s)
}
