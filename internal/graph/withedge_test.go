package graph

import (
	"math/rand"
	"testing"
)

func buildRandom(t *testing.T, seed int64, n, m int) *Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder()
	for i := 0; i < n; i++ {
		b.AddNodeLabel(b.Intern(string(rune('A' + i%4))))
	}
	for i := 0; i < m; i++ {
		b.AddEdge(NodeID(rng.Intn(n)), NodeID(rng.Intn(n)))
	}
	return b.Build()
}

func TestWithEdgeAddsEdgeAndPreservesOld(t *testing.T) {
	g := buildRandom(t, 1, 10, 15)
	oldEdges := g.NumEdges()
	oldSucc := append([]NodeID(nil), g.Successors(3)...)
	oldPred := append([]NodeID(nil), g.Predecessors(7)...)

	ng := g.WithEdge(3, 7)

	if ng.NumEdges() != oldEdges+1 {
		t.Fatalf("new graph has %d edges, want %d", ng.NumEdges(), oldEdges+1)
	}
	// New graph sees the edge, both directions, sorted.
	found := false
	for _, w := range ng.Successors(3) {
		if w == 7 {
			found = true
		}
	}
	if !found {
		t.Fatal("7 not in Successors(3) after WithEdge")
	}
	found = false
	for _, w := range ng.Predecessors(7) {
		if w == 3 {
			found = true
		}
	}
	if !found {
		t.Fatal("3 not in Predecessors(7) after WithEdge")
	}
	for v := NodeID(0); int(v) < ng.NumNodes(); v++ {
		for _, adj := range [][]NodeID{ng.Successors(v), ng.Predecessors(v)} {
			for i := 1; i < len(adj); i++ {
				if adj[i-1] > adj[i] {
					t.Fatalf("adjacency of %d not sorted: %v", v, adj)
				}
			}
		}
	}
	// Old graph is untouched.
	if g.NumEdges() != oldEdges {
		t.Fatalf("old graph mutated: %d edges, want %d", g.NumEdges(), oldEdges)
	}
	if !equalNodeIDs(g.Successors(3), oldSucc) {
		t.Fatalf("old Successors(3) mutated: %v vs %v", g.Successors(3), oldSucc)
	}
	if !equalNodeIDs(g.Predecessors(7), oldPred) {
		t.Fatalf("old Predecessors(7) mutated: %v vs %v", g.Predecessors(7), oldPred)
	}
}

func TestWithEdgeEquivalentToRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 12
	g := buildRandom(t, 2, n, 18)
	type edge struct{ u, v NodeID }
	var extra []edge
	cow := g
	for step := 0; step < 20; step++ {
		u, v := NodeID(rng.Intn(n)), NodeID(rng.Intn(n))
		// Skip duplicates: Builder dedups, WithEdge does not.
		dup := false
		for _, w := range cow.Successors(u) {
			if w == v {
				dup = true
			}
		}
		if dup {
			continue
		}
		cow = cow.WithEdge(u, v)
		extra = append(extra, edge{u, v})

		b := NewBuilder()
		for i := 0; i < n; i++ {
			b.AddNodeLabel(b.Intern(g.LabelNameOf(NodeID(i))))
		}
		for x := NodeID(0); int(x) < n; x++ {
			for _, w := range g.Successors(x) {
				b.AddEdge(x, w)
			}
		}
		for _, e := range extra {
			b.AddEdge(e.u, e.v)
		}
		want := b.Build()

		if cow.NumEdges() != want.NumEdges() {
			t.Fatalf("step %d: %d edges, rebuild has %d", step, cow.NumEdges(), want.NumEdges())
		}
		for x := NodeID(0); int(x) < n; x++ {
			if !equalNodeIDs(cow.Successors(x), want.Successors(x)) {
				t.Fatalf("step %d: Successors(%d) = %v, rebuild %v",
					step, x, cow.Successors(x), want.Successors(x))
			}
			if !equalNodeIDs(cow.Predecessors(x), want.Predecessors(x)) {
				t.Fatalf("step %d: Predecessors(%d) = %v, rebuild %v",
					step, x, cow.Predecessors(x), want.Predecessors(x))
			}
		}
	}
}

func equalNodeIDs(a, b []NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
