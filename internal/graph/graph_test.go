package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// paperGraph builds the data graph of Figure 1(a):
// labels A,B,C,D,E with nodes a0; b0..b6; c0..c3; d0..d5; e0..e7 and the
// edges drawn in the figure (reconstructed from Figure 2's codes).
func paperGraph(t testing.TB) (*Graph, map[string]NodeID) {
	b := NewBuilder()
	ids := map[string]NodeID{}
	add := func(name string, label string) {
		ids[name] = b.AddNode(label)
	}
	add("a0", "A")
	for _, n := range []string{"b0", "b1", "b2", "b3", "b4", "b5", "b6"} {
		add(n, "B")
	}
	for _, n := range []string{"c0", "c1", "c2", "c3"} {
		add(n, "C")
	}
	for _, n := range []string{"d0", "d1", "d2", "d3", "d4", "d5"} {
		add(n, "D")
	}
	for _, n := range []string{"e0", "e1", "e2", "e3", "e4", "e5", "e6", "e7"} {
		add(n, "E")
	}
	edges := [][2]string{
		{"a0", "b3"}, {"a0", "b4"}, {"a0", "b5"},
		{"a0", "c0"}, {"b3", "c2"}, {"b4", "c2"},
		{"b5", "c3"}, {"b6", "c3"},
		{"b0", "c1"}, {"b1", "c1"}, {"b2", "c1"}, {"b1", "c3"},
		{"c0", "d0"}, {"c0", "d1"}, {"c0", "e0"},
		{"c1", "d2"}, {"c1", "d3"}, {"c1", "e7"},
		{"c2", "e2"},
		{"c3", "d4"}, {"c3", "d5"},
		{"d0", "e0"}, {"d2", "e1"}, {"d4", "e3"},
		{"e4", "e5"},
	}
	for _, e := range edges {
		b.AddEdge(ids[e[0]], ids[e[1]])
	}
	return b.Build(), ids
}

func TestBuilderBasics(t *testing.T) {
	g, ids := paperGraph(t)
	if g.NumNodes() != 26 {
		t.Fatalf("NumNodes = %d, want 26", g.NumNodes())
	}
	if g.NumEdges() != 25 {
		t.Fatalf("NumEdges = %d, want 25", g.NumEdges())
	}
	if g.Labels().Len() != 5 {
		t.Fatalf("labels = %d, want 5", g.Labels().Len())
	}
	if g.LabelNameOf(ids["c2"]) != "C" {
		t.Fatalf("label of c2 = %q", g.LabelNameOf(ids["c2"]))
	}
	if got := g.ExtentSize(g.Labels().Lookup("B")); got != 7 {
		t.Fatalf("|ext(B)| = %d, want 7", got)
	}
	if got := g.OutDegree(ids["a0"]); got != 4 {
		t.Fatalf("outdeg(a0) = %d, want 4", got)
	}
	if got := g.InDegree(ids["c1"]); got != 3 {
		t.Fatalf("indeg(c1) = %d, want 3", got)
	}
}

func TestLabelTable(t *testing.T) {
	var lt LabelTable
	a := lt.Intern("A")
	b := lt.Intern("B")
	if a == b {
		t.Fatal("distinct names interned to same label")
	}
	if lt.Intern("A") != a {
		t.Fatal("re-interning changed ID")
	}
	if lt.Lookup("missing") != InvalidLabel {
		t.Fatal("Lookup of missing name should be InvalidLabel")
	}
	if lt.Name(a) != "A" || lt.Name(b) != "B" {
		t.Fatal("Name mismatch")
	}
	if got := lt.Names(); len(got) != 2 || got[0] != "A" || got[1] != "B" {
		t.Fatalf("Names() = %v", got)
	}
	var empty LabelTable
	if empty.Lookup("x") != InvalidLabel {
		t.Fatal("empty table Lookup should be InvalidLabel")
	}
}

func TestReachesPaperExamples(t *testing.T) {
	g, ids := paperGraph(t)
	// From Section 2: a0 ⇝ c1 is NOT an edge-path in our reconstruction of
	// the figure (Figure 1 is only partially recoverable), but the following
	// pairs are fixed by the drawn edges.
	cases := []struct {
		from, to string
		want     bool
	}{
		{"a0", "c2", true},  // a0→b3→c2
		{"a0", "e2", true},  // …→c2→e2
		{"b1", "c3", true},  // edge
		{"b1", "e3", true},  // b1→c3→d4→e3
		{"c0", "e0", true},  // direct and via d0
		{"e0", "c0", false}, // no back edges
		{"b0", "b1", false},
		{"d2", "e1", true},
		{"e4", "e5", true},
		{"e5", "e4", false},
		{"a0", "a0", true}, // reflexive
	}
	for _, c := range cases {
		if got := Reaches(g, ids[c.from], ids[c.to]); got != c.want {
			t.Errorf("Reaches(%s, %s) = %v, want %v", c.from, c.to, got, c.want)
		}
	}
}

func TestDedupEdges(t *testing.T) {
	b := NewBuilder()
	b.SetDedupEdges(true)
	u := b.AddNode("X")
	v := b.AddNode("Y")
	b.AddEdge(u, v)
	b.AddEdge(u, v)
	b.AddEdge(u, v)
	g := b.Build()
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1 after dedup", g.NumEdges())
	}
}

func TestAddEdgePanicsOnBadNode(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for edge to nonexistent node")
		}
	}()
	b := NewBuilder()
	u := b.AddNode("X")
	b.AddEdge(u, 99)
}

// randomGraph builds a random labeled digraph from a seed.
func randomGraph(seed int64, n, m, nlabels int) *Graph {
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder()
	for i := 0; i < n; i++ {
		b.AddNode(string(rune('A' + rng.Intn(nlabels))))
	}
	for i := 0; i < m; i++ {
		b.AddEdge(NodeID(rng.Intn(n)), NodeID(rng.Intn(n)))
	}
	return b.Build()
}

func TestSCCOnCycle(t *testing.T) {
	b := NewBuilder()
	var nodes []NodeID
	for i := 0; i < 5; i++ {
		nodes = append(nodes, b.AddNode("X"))
	}
	for i := 0; i < 5; i++ {
		b.AddEdge(nodes[i], nodes[(i+1)%5])
	}
	g := b.Build()
	s := NewSCC(g)
	if s.NumComponents() != 1 {
		t.Fatalf("components = %d, want 1", s.NumComponents())
	}
	if len(s.Members(0)) != 5 {
		t.Fatalf("component size = %d, want 5", len(s.Members(0)))
	}
}

func TestSCCTwoCyclesBridge(t *testing.T) {
	b := NewBuilder()
	var nodes []NodeID
	for i := 0; i < 6; i++ {
		nodes = append(nodes, b.AddNode("X"))
	}
	// Cycle 0-1-2, cycle 3-4-5, bridge 2→3.
	b.AddEdge(nodes[0], nodes[1])
	b.AddEdge(nodes[1], nodes[2])
	b.AddEdge(nodes[2], nodes[0])
	b.AddEdge(nodes[3], nodes[4])
	b.AddEdge(nodes[4], nodes[5])
	b.AddEdge(nodes[5], nodes[3])
	b.AddEdge(nodes[2], nodes[3])
	g := b.Build()
	s := NewSCC(g)
	if s.NumComponents() != 2 {
		t.Fatalf("components = %d, want 2", s.NumComponents())
	}
	// The first cycle's component must topologically precede the second's,
	// i.e. have the larger ID (reverse topological numbering).
	c0 := s.Comp[nodes[0]]
	c3 := s.Comp[nodes[3]]
	if c0 <= c3 {
		t.Fatalf("expected comp(first cycle)=%d > comp(second)=%d", c0, c3)
	}
	if got := s.CondSuccessors(c0); len(got) != 1 || got[0] != c3 {
		t.Fatalf("CondSuccessors(%d) = %v, want [%d]", c0, got, c3)
	}
	if got := s.CondPredecessors(c3); len(got) != 1 || got[0] != c0 {
		t.Fatalf("CondPredecessors(%d) = %v, want [%d]", c3, got, c0)
	}
}

// TestSCCProperty checks on random graphs that two nodes share a component
// iff they reach each other, and that component IDs are reverse-topological.
func TestSCCProperty(t *testing.T) {
	check := func(seed int64) bool {
		g := randomGraph(seed, 30, 60, 3)
		s := NewSCC(g)
		for trial := 0; trial < 40; trial++ {
			rng := rand.New(rand.NewSource(seed + int64(trial)))
			u := NodeID(rng.Intn(g.NumNodes()))
			v := NodeID(rng.Intn(g.NumNodes()))
			same := s.Comp[u] == s.Comp[v]
			mutual := Reaches(g, u, v) && Reaches(g, v, u)
			if same != mutual {
				return false
			}
			// Reverse-topological IDs: u ⇝ v across components implies
			// comp(u) > comp(v).
			if s.Comp[u] != s.Comp[v] && Reaches(g, u, v) && s.Comp[u] < s.Comp[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestTransitiveClosureProperty checks the bitset closure against BFS.
func TestTransitiveClosureProperty(t *testing.T) {
	check := func(seed int64) bool {
		g := randomGraph(seed, 25, 50, 3)
		tc := NewTransitiveClosure(g)
		rng := rand.New(rand.NewSource(seed ^ 0x5f5f))
		for trial := 0; trial < 50; trial++ {
			u := NodeID(rng.Intn(g.NumNodes()))
			v := NodeID(rng.Intn(g.NumNodes()))
			if tc.Reaches(u, v) != Reaches(g, u, v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestTransitiveClosureCountFrom(t *testing.T) {
	g, ids := paperGraph(t)
	tc := NewTransitiveClosure(g)
	from := ReachableFrom(g, ids["a0"])
	want := 0
	for _, ok := range from {
		if ok {
			want++
		}
	}
	if got := tc.CountFrom(ids["a0"]); got != want {
		t.Fatalf("CountFrom(a0) = %d, want %d", got, want)
	}
}

func TestReachableFromAndTo(t *testing.T) {
	g, ids := paperGraph(t)
	from := ReachableFrom(g, ids["c0"])
	if !from[ids["e0"]] || !from[ids["d1"]] || from[ids["a0"]] {
		t.Fatalf("ReachableFrom(c0) wrong: e0=%v d1=%v a0=%v",
			from[ids["e0"]], from[ids["d1"]], from[ids["a0"]])
	}
	to := ReachingTo(g, ids["e3"])
	if !to[ids["c3"]] || !to[ids["b1"]] || to[ids["e0"]] {
		t.Fatalf("ReachingTo(e3) wrong")
	}
	// Duality: w ∈ ReachableFrom(v) ⇔ v ∈ ReachingTo(w).
	for v := NodeID(0); int(v) < g.NumNodes(); v += 3 {
		fw := ReachableFrom(g, v)
		for w := NodeID(0); int(w) < g.NumNodes(); w += 5 {
			if fw[w] != ReachingTo(g, w)[v] {
				t.Fatalf("duality violated for %d,%d", v, w)
			}
		}
	}
}

func TestIsDAG(t *testing.T) {
	g, _ := paperGraph(t)
	if !IsDAG(g) {
		t.Fatal("paper graph should be a DAG")
	}
	b := NewBuilder()
	u := b.AddNode("X")
	v := b.AddNode("X")
	b.AddEdge(u, v)
	b.AddEdge(v, u)
	if IsDAG(b.Build()) {
		t.Fatal("2-cycle should not be a DAG")
	}
	b2 := NewBuilder()
	w := b2.AddNode("X")
	b2.AddEdge(w, w)
	if IsDAG(b2.Build()) {
		t.Fatal("self-loop should not be a DAG")
	}
}

func TestSCCTopoOrder(t *testing.T) {
	g := randomGraph(7, 40, 80, 4)
	s := NewSCC(g)
	order := s.TopoOrder()
	pos := make(map[int32]int, len(order))
	for i, c := range order {
		pos[c] = i
	}
	for _, c := range order {
		for _, d := range s.CondSuccessors(c) {
			if pos[c] >= pos[d] {
				t.Fatalf("topo order violated: %d before %d", c, d)
			}
		}
	}
}

func BenchmarkTransitiveClosure(b *testing.B) {
	g := randomGraph(11, 2000, 6000, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewTransitiveClosure(g)
	}
}

func BenchmarkSCC(b *testing.B) {
	g := randomGraph(12, 20000, 60000, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewSCC(g)
	}
}
