package graph

// SCC is the result of a strongly-connected-component decomposition of a
// Graph, together with its condensation (a DAG whose nodes are components).
type SCC struct {
	// Comp[v] is the component ID of node v. Component IDs are dense in
	// [0, NumComponents) and assigned in reverse topological order of the
	// condensation (a component's ID is greater than the IDs of the
	// components it can reach). Members reports the nodes of one component.
	Comp []int32

	members    [][]NodeID
	condHead   []int32
	condAdj    []int32
	condRev    []int32
	condRevHdr []int32
}

// NumComponents returns the number of strongly connected components.
func (s *SCC) NumComponents() int { return len(s.members) }

// Members returns the nodes in component c. The slice aliases internal
// storage and must not be modified.
func (s *SCC) Members(c int32) []NodeID { return s.members[c] }

// CondSuccessors returns the successor components of component c in the
// condensation (deduplicated).
func (s *SCC) CondSuccessors(c int32) []int32 {
	return s.condAdj[s.condHead[c]:s.condHead[c+1]]
}

// CondPredecessors returns the predecessor components of component c in the
// condensation (deduplicated).
func (s *SCC) CondPredecessors(c int32) []int32 {
	return s.condRev[s.condRevHdr[c]:s.condRevHdr[c+1]]
}

// TopoOrder returns the component IDs in a topological order of the
// condensation (sources first). Because component IDs are assigned in
// reverse topological order by Tarjan's algorithm, this is simply
// NumComponents-1 .. 0.
func (s *SCC) TopoOrder() []int32 {
	n := s.NumComponents()
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(n - 1 - i)
	}
	return out
}

// NewSCC decomposes g into strongly connected components using an iterative
// Tarjan's algorithm and builds the condensation DAG.
func NewSCC(g *Graph) *SCC {
	n := g.NumNodes()
	const unvisited = -1
	index := make([]int32, n)
	low := make([]int32, n)
	onStack := make([]bool, n)
	comp := make([]int32, n)
	for i := range index {
		index[i] = unvisited
		comp[i] = -1
	}
	var (
		counter int32
		nComp   int32
		stack   []NodeID // Tarjan stack
	)

	// Explicit DFS stack: each frame is (node, index into successor list).
	type frame struct {
		v  NodeID
		ei int32
	}
	var dfs []frame

	for start := 0; start < n; start++ {
		if index[start] != unvisited {
			continue
		}
		dfs = append(dfs[:0], frame{NodeID(start), 0})
		index[start] = counter
		low[start] = counter
		counter++
		stack = append(stack, NodeID(start))
		onStack[start] = true

		for len(dfs) > 0 {
			f := &dfs[len(dfs)-1]
			succ := g.Successors(f.v)
			if int(f.ei) < len(succ) {
				w := succ[f.ei]
				f.ei++
				if index[w] == unvisited {
					index[w] = counter
					low[w] = counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					dfs = append(dfs, frame{w, 0})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			// Post-visit of f.v.
			v := f.v
			dfs = dfs[:len(dfs)-1]
			if len(dfs) > 0 {
				parent := dfs[len(dfs)-1].v
				if low[v] < low[parent] {
					low[parent] = low[v]
				}
			}
			if low[v] == index[v] {
				// v is the root of a component: pop it.
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = nComp
					if w == v {
						break
					}
				}
				nComp++
			}
		}
	}

	s := &SCC{Comp: comp}
	s.members = make([][]NodeID, nComp)
	counts := make([]int, nComp)
	for _, c := range comp {
		counts[c]++
	}
	for c := range s.members {
		s.members[c] = make([]NodeID, 0, counts[c])
	}
	for v := 0; v < n; v++ {
		s.members[comp[v]] = append(s.members[comp[v]], NodeID(v))
	}

	// Condensation edges (deduplicated).
	type cedge struct{ u, v int32 }
	seen := make(map[cedge]struct{})
	var cs, cd []int32
	for v := 0; v < n; v++ {
		cu := comp[v]
		for _, w := range g.Successors(NodeID(v)) {
			cv := comp[w]
			if cu == cv {
				continue
			}
			e := cedge{cu, cv}
			if _, ok := seen[e]; ok {
				continue
			}
			seen[e] = struct{}{}
			cs = append(cs, cu)
			cd = append(cd, cv)
		}
	}
	s.condHead, s.condAdj = buildCSR32(int(nComp), cs, cd)
	s.condRevHdr, s.condRev = buildCSR32(int(nComp), cd, cs)
	return s
}

// buildCSR32 is buildCSR for int32 node IDs (condensation components).
func buildCSR32(n int, from, to []int32) ([]int32, []int32) {
	head := make([]int32, n+1)
	for _, u := range from {
		head[u+1]++
	}
	for i := 1; i <= n; i++ {
		head[i] += head[i-1]
	}
	adj := make([]int32, len(from))
	cursor := make([]int32, n)
	for i, u := range from {
		adj[head[u]+cursor[u]] = to[i]
		cursor[u]++
	}
	return head, adj
}
