package graph

import (
	"math/rand"
	"slices"
	"testing"
)

func TestWithoutEdgeRemovesEdgeAndPreservesOld(t *testing.T) {
	g := buildRandom(t, 7, 10, 15).WithEdge(3, 7)
	oldEdges := g.NumEdges()
	oldSucc := append([]NodeID(nil), g.Successors(3)...)
	oldPred := append([]NodeID(nil), g.Predecessors(7)...)

	ng := g.WithoutEdge(3, 7)

	if ng.NumEdges() != oldEdges-1 {
		t.Fatalf("new graph has %d edges, want %d", ng.NumEdges(), oldEdges-1)
	}
	// One occurrence is gone, both directions.
	if n0, n1 := count(oldSucc, 7), count(ng.Successors(3), 7); n1 != n0-1 {
		t.Fatalf("Successors(3) holds 7 ×%d, want ×%d", n1, n0-1)
	}
	if n0, n1 := count(oldPred, 3), count(ng.Predecessors(7), 3); n1 != n0-1 {
		t.Fatalf("Predecessors(7) holds 3 ×%d, want ×%d", n1, n0-1)
	}
	for v := NodeID(0); int(v) < ng.NumNodes(); v++ {
		for _, adj := range [][]NodeID{ng.Successors(v), ng.Predecessors(v)} {
			if !slices.IsSorted(adj) {
				t.Fatalf("adjacency of %d not sorted: %v", v, adj)
			}
		}
	}
	// Old graph is untouched.
	if !slices.Equal(g.Successors(3), oldSucc) || !slices.Equal(g.Predecessors(7), oldPred) {
		t.Fatal("WithoutEdge mutated the receiver")
	}
	if g.NumEdges() != oldEdges {
		t.Fatalf("receiver edge count changed to %d", g.NumEdges())
	}
}

func TestWithoutEdgeInvertsWithEdge(t *testing.T) {
	g := buildRandom(t, 8, 12, 20)
	rng := rand.New(rand.NewSource(9))
	for step := 0; step < 30; step++ {
		u := NodeID(rng.Intn(g.NumNodes()))
		v := NodeID(rng.Intn(g.NumNodes()))
		if slices.Contains(g.Successors(u), v) {
			continue
		}
		h := g.WithEdge(u, v).WithoutEdge(u, v)
		if h.NumEdges() != g.NumEdges() {
			t.Fatalf("edge count %d after add+remove, want %d", h.NumEdges(), g.NumEdges())
		}
		for x := NodeID(0); int(x) < g.NumNodes(); x++ {
			if !slices.Equal(h.Successors(x), g.Successors(x)) {
				t.Fatalf("Successors(%d) = %v after add+remove of %d->%d, want %v",
					x, h.Successors(x), u, v, g.Successors(x))
			}
			if !slices.Equal(h.Predecessors(x), g.Predecessors(x)) {
				t.Fatalf("Predecessors(%d) changed after add+remove of %d->%d", x, u, v)
			}
		}
	}
}

func TestWithoutEdgePanicsOnAbsentOrOutOfRange(t *testing.T) {
	g := buildRandom(t, 10, 5, 0)
	for _, tc := range []struct {
		name string
		u, v NodeID
	}{
		{"absent", 0, 1},
		{"out-of-range-u", 99, 1},
		{"out-of-range-v", 0, 99},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: WithoutEdge(%d, %d) did not panic", tc.name, tc.u, tc.v)
				}
			}()
			g.WithoutEdge(tc.u, tc.v)
		}()
	}
}

func count(s []NodeID, v NodeID) int {
	n := 0
	for _, x := range s {
		if x == v {
			n++
		}
	}
	return n
}
