// Package graph provides the directed node-labeled data-graph model used
// throughout the system: adjacency storage, strongly-connected-component
// condensation, topological ordering, traversals, and a naive reachability
// oracle used as ground truth in tests.
//
// A data graph G_D = (V, E, Σ, φ) follows Section 2 of the paper: V is a set
// of nodes, E a set of directed edges, Σ a set of node labels and φ assigns
// each node a label. Nodes are dense integer IDs in [0, NumNodes).
package graph

import (
	"fmt"
	"sort"
)

// NodeID identifies a node of a data graph. IDs are dense: every value in
// [0, Graph.NumNodes()) is a valid node.
type NodeID int32

// Label identifies a node label (an element of Σ). Labels are dense integer
// IDs managed by a LabelTable.
type Label int32

// InvalidNode is returned by lookups that find no node.
const InvalidNode NodeID = -1

// InvalidLabel is returned by lookups that find no label.
const InvalidLabel Label = -1

// LabelTable interns label names to dense Label IDs. The zero value is ready
// to use.
type LabelTable struct {
	names []string
	ids   map[string]Label
}

// Intern returns the Label for name, assigning a fresh ID on first use.
func (t *LabelTable) Intern(name string) Label {
	if t.ids == nil {
		t.ids = make(map[string]Label)
	}
	if id, ok := t.ids[name]; ok {
		return id
	}
	id := Label(len(t.names))
	t.names = append(t.names, name)
	t.ids[name] = id
	return id
}

// Lookup returns the Label for name, or InvalidLabel if name was never
// interned.
func (t *LabelTable) Lookup(name string) Label {
	if t.ids == nil {
		return InvalidLabel
	}
	if id, ok := t.ids[name]; ok {
		return id
	}
	return InvalidLabel
}

// Name returns the name of label id. It panics if id is out of range.
func (t *LabelTable) Name(id Label) string { return t.names[id] }

// Len returns the number of interned labels, |Σ|.
func (t *LabelTable) Len() int { return len(t.names) }

// Names returns a copy of all label names indexed by Label.
func (t *LabelTable) Names() []string {
	out := make([]string, len(t.names))
	copy(out, t.names)
	return out
}

// Graph is a directed node-labeled graph in compressed sparse row form.
// Build one with a Builder; a built Graph is immutable and safe for
// concurrent readers.
type Graph struct {
	labels *LabelTable

	nodeLabel []Label // nodeLabel[v] = φ(v)

	// CSR forward adjacency.
	fwdHead []int32  // len NumNodes+1
	fwdAdj  []NodeID // successors, grouped by source

	// CSR reverse adjacency.
	revHead []int32
	revAdj  []NodeID

	// extent[l] lists the nodes with label l, sorted ascending: ext(X).
	extent [][]NodeID
}

// NumNodes returns |V|.
func (g *Graph) NumNodes() int { return len(g.nodeLabel) }

// NumEdges returns |E|.
func (g *Graph) NumEdges() int { return len(g.fwdAdj) }

// Labels returns the graph's label table.
func (g *Graph) Labels() *LabelTable { return g.labels }

// LabelOf returns φ(v).
func (g *Graph) LabelOf(v NodeID) Label { return g.nodeLabel[v] }

// LabelNameOf returns the name of φ(v).
func (g *Graph) LabelNameOf(v NodeID) string { return g.labels.Name(g.nodeLabel[v]) }

// Successors returns the out-neighbours of v. The returned slice aliases the
// graph's internal storage and must not be modified.
func (g *Graph) Successors(v NodeID) []NodeID {
	return g.fwdAdj[g.fwdHead[v]:g.fwdHead[v+1]]
}

// Predecessors returns the in-neighbours of v. The returned slice aliases
// the graph's internal storage and must not be modified.
func (g *Graph) Predecessors(v NodeID) []NodeID {
	return g.revAdj[g.revHead[v]:g.revHead[v+1]]
}

// OutDegree returns the number of successors of v.
func (g *Graph) OutDegree(v NodeID) int { return int(g.fwdHead[v+1] - g.fwdHead[v]) }

// InDegree returns the number of predecessors of v.
func (g *Graph) InDegree(v NodeID) int { return int(g.revHead[v+1] - g.revHead[v]) }

// Extent returns ext(X): all nodes labeled l, sorted ascending. The returned
// slice aliases internal storage and must not be modified. It is nil when no
// node has label l.
func (g *Graph) Extent(l Label) []NodeID {
	if int(l) < 0 || int(l) >= len(g.extent) {
		return nil
	}
	return g.extent[l]
}

// ExtentSize returns |ext(X)| for label l.
func (g *Graph) ExtentSize(l Label) int { return len(g.Extent(l)) }

// String summarises the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{|V|=%d |E|=%d |Σ|=%d}", g.NumNodes(), g.NumEdges(), g.labels.Len())
}

// Builder incrementally constructs a Graph. Not safe for concurrent use.
type Builder struct {
	labels    LabelTable
	nodeLabel []Label
	srcs      []NodeID
	dsts      []NodeID
	dedup     bool
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder { return &Builder{} }

// SetDedupEdges controls whether Build removes duplicate (u,v) edges.
// Off by default.
func (b *Builder) SetDedupEdges(on bool) { b.dedup = on }

// AddNode appends a node with the given label name and returns its ID.
func (b *Builder) AddNode(labelName string) NodeID {
	return b.AddNodeLabel(b.labels.Intern(labelName))
}

// AddNodeLabel appends a node with an already-interned label.
func (b *Builder) AddNodeLabel(l Label) NodeID {
	id := NodeID(len(b.nodeLabel))
	b.nodeLabel = append(b.nodeLabel, l)
	return id
}

// Intern interns a label name without adding a node.
func (b *Builder) Intern(labelName string) Label { return b.labels.Intern(labelName) }

// NumNodes returns the number of nodes added so far.
func (b *Builder) NumNodes() int { return len(b.nodeLabel) }

// AddEdge appends the directed edge u→v. Both endpoints must already exist.
func (b *Builder) AddEdge(u, v NodeID) {
	if int(u) >= len(b.nodeLabel) || int(v) >= len(b.nodeLabel) || u < 0 || v < 0 {
		panic(fmt.Sprintf("graph: AddEdge(%d, %d) with %d nodes", u, v, len(b.nodeLabel)))
	}
	b.srcs = append(b.srcs, u)
	b.dsts = append(b.dsts, v)
}

// Build finalises the graph. The Builder may not be reused afterwards.
func (b *Builder) Build() *Graph {
	n := len(b.nodeLabel)
	srcs, dsts := b.srcs, b.dsts
	if b.dedup {
		srcs, dsts = dedupEdges(srcs, dsts)
	}
	g := &Graph{
		labels:    &b.labels,
		nodeLabel: b.nodeLabel,
	}
	g.fwdHead, g.fwdAdj = buildCSR(n, srcs, dsts)
	g.revHead, g.revAdj = buildCSR(n, dsts, srcs)

	g.extent = make([][]NodeID, b.labels.Len())
	counts := make([]int, b.labels.Len())
	for _, l := range b.nodeLabel {
		counts[l]++
	}
	for l, c := range counts {
		g.extent[l] = make([]NodeID, 0, c)
	}
	for v, l := range b.nodeLabel {
		g.extent[l] = append(g.extent[l], NodeID(v))
	}
	return g
}

// buildCSR builds a CSR head/adjacency pair for edges from[i]→to[i], with
// each node's adjacency list sorted ascending.
func buildCSR(n int, from, to []NodeID) ([]int32, []NodeID) {
	head := make([]int32, n+1)
	for _, u := range from {
		head[u+1]++
	}
	for i := 1; i <= n; i++ {
		head[i] += head[i-1]
	}
	adj := make([]NodeID, len(from))
	cursor := make([]int32, n)
	for i, u := range from {
		adj[head[u]+cursor[u]] = to[i]
		cursor[u]++
	}
	for v := 0; v < n; v++ {
		seg := adj[head[v]:head[v+1]]
		sort.Slice(seg, func(i, j int) bool { return seg[i] < seg[j] })
	}
	return head, adj
}

// dedupEdges removes duplicate (u,v) pairs, preserving one copy each.
func dedupEdges(srcs, dsts []NodeID) ([]NodeID, []NodeID) {
	type edge struct{ u, v NodeID }
	seen := make(map[edge]struct{}, len(srcs))
	outS := srcs[:0]
	outD := dsts[:0]
	for i := range srcs {
		e := edge{srcs[i], dsts[i]}
		if _, ok := seen[e]; ok {
			continue
		}
		seen[e] = struct{}{}
		outS = append(outS, srcs[i])
		outD = append(outD, dsts[i])
	}
	return outS, outD
}
