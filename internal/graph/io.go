package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The text graph format, one record per line:
//
//	fgm 1                 header: magic + version
//	n <label>             one per node, in node-ID order
//	e <from> <to>         one per edge
//	# ...                 comment (ignored)
//
// It is the interchange format of cmd/fgmgen and cmd/fgmatch.

// WriteText serialises g in the text graph format.
func WriteText(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := fmt.Fprintf(bw, "fgm 1\n"); err != nil {
		return err
	}
	for v := NodeID(0); int(v) < g.NumNodes(); v++ {
		if _, err := fmt.Fprintf(bw, "n %s\n", g.LabelNameOf(v)); err != nil {
			return err
		}
	}
	for v := NodeID(0); int(v) < g.NumNodes(); v++ {
		for _, u := range g.Successors(v) {
			if _, err := fmt.Fprintf(bw, "e %d %d\n", v, u); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadText parses the text graph format.
func ReadText(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("graph: empty input")
	}
	if strings.TrimSpace(sc.Text()) != "fgm 1" {
		return nil, fmt.Errorf("graph: bad header %q (want \"fgm 1\")", sc.Text())
	}
	b := NewBuilder()
	lineNo := 1
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		switch {
		case strings.HasPrefix(line, "n "):
			label := strings.TrimSpace(line[2:])
			if label == "" {
				return nil, fmt.Errorf("graph: line %d: empty label", lineNo)
			}
			b.AddNode(label)
		case strings.HasPrefix(line, "e "):
			fields := strings.Fields(line[2:])
			if len(fields) != 2 {
				return nil, fmt.Errorf("graph: line %d: want \"e <from> <to>\"", lineNo)
			}
			from, err := strconv.Atoi(fields[0])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
			}
			to, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
			}
			if from < 0 || from >= b.NumNodes() || to < 0 || to >= b.NumNodes() {
				return nil, fmt.Errorf("graph: line %d: edge %d->%d out of range (%d nodes so far; declare nodes before edges)",
					lineNo, from, to, b.NumNodes())
			}
			b.AddEdge(NodeID(from), NodeID(to))
		default:
			return nil, fmt.Errorf("graph: line %d: unknown record %q", lineNo, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return b.Build(), nil
}
